// Verified read-cache layer tests: digest-keyed sharded ReadBuffer
// (accounting, fail-closed admission, single-flight, invalidation racing
// readers), proof-path node caching in the verifier, cache lifecycle across
// compaction's obsolete-file purge, and warm-hit enclave-counter budgets.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "crypto/sha256.h"
#include "elsm/elsm_db.h"
#include "storage/read_buffer.h"
#include "storage/simfs.h"

namespace elsm {
namespace {

using storage::BufferPlacement;
using storage::ReadBuffer;

std::shared_ptr<sgx::Enclave> MakeEnclave() {
  return std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
}

std::string Key(int i) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

Options BufferOptions() {
  Options o;
  o.mode = Mode::kP2;
  o.memtable_bytes = 4 << 10;
  o.level1_bytes = 16 << 10;
  o.block_bytes = 1024;
  o.file_bytes = 8 << 10;
  o.read_path = lsm::ReadPathKind::kBuffer;
  o.read_buffer_bytes = 4 << 20;
  return o;
}

// --- unit: digest keying and fail-closed admission -------------------------

TEST(ReadCacheTest, DigestMismatchFailsClosedAndCachesNothing) {
  auto enclave = MakeEnclave();
  ReadBuffer buffer(enclave, 64 << 10, BufferPlacement::kOutsideEnclave, 4);
  const std::string good(512, 'a');
  const crypto::Hash256 digest = crypto::Sha256::Digest(good);
  int loads = 0;
  auto bad_loader = [&]() -> Result<std::string> {
    ++loads;
    return std::string(512, 'z');  // host swapped the block contents
  };
  auto miss = buffer.Get("f", 0, digest, bad_loader);
  ASSERT_FALSE(miss.ok());
  EXPECT_TRUE(miss.status().IsAuthFailure());
  EXPECT_EQ(buffer.bytes_used(), 0u);

  auto good_loader = [&]() -> Result<std::string> {
    ++loads;
    return good;
  };
  auto hit = buffer.Get("f", 0, digest, good_loader);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit.value(), good);
  EXPECT_EQ(loads, 2);
  // Warm: no loader call, contents already verified.
  ASSERT_TRUE(buffer.Get("f", 0, digest, bad_loader).ok());
  EXPECT_EQ(loads, 2);
}

TEST(ReadCacheTest, StaleDigestCannotServeRewrittenFile) {
  // Compaction name reuse in miniature: the same (file, offset) changes
  // contents. The old digest key must never return the new bytes, and the
  // new digest key must never return the cached old bytes.
  auto enclave = MakeEnclave();
  ReadBuffer buffer(enclave, 64 << 10, BufferPlacement::kOutsideEnclave, 4);
  std::string disk(1024, '1');  // simulated file contents
  const crypto::Hash256 gen1 = crypto::Sha256::Digest(disk);
  auto loader = [&]() -> Result<std::string> { return disk; };
  ASSERT_TRUE(buffer.Get("f", 0, gen1, loader).ok());

  disk.assign(1024, '2');  // file rewritten in place under the same name
  const crypto::Hash256 gen2 = crypto::Sha256::Digest(disk);
  auto fresh = buffer.Get("f", 0, gen2, loader);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*fresh.value(), disk);  // re-read, not the stale cached block

  // A reader still presenting the old digest after the rewrite fails
  // closed instead of being served the wrong generation.
  buffer.Invalidate("f");
  auto stale = buffer.Get("f", 0, gen1, loader);
  ASSERT_FALSE(stale.ok());
  EXPECT_TRUE(stale.status().IsAuthFailure());
}

TEST(ReadCacheTest, OverwriteAccountingStaysExact) {
  auto enclave = MakeEnclave();
  ReadBuffer buffer(enclave, 32 << 10, BufferPlacement::kOutsideEnclave, 2);
  auto loader_of = [](size_t n) {
    return [n]() -> Result<std::string> { return std::string(n, 'x'); };
  };
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        buffer.Get("f", i * 64, crypto::kZeroHash, loader_of(700 + i)).ok());
  }
  EXPECT_EQ(buffer.bytes_used(), buffer.ResidentBytes());
  buffer.Invalidate("f");
  EXPECT_EQ(buffer.bytes_used(), 0u);
  EXPECT_EQ(buffer.ResidentBytes(), 0u);
  EXPECT_EQ(buffer.stats().invalidations, 16u);
}

TEST(ReadCacheTest, ShardedEvictionRespectsCapacity) {
  auto enclave = MakeEnclave();
  ReadBuffer buffer(enclave, 16 << 10, BufferPlacement::kOutsideEnclave, 4);
  auto loader = []() -> Result<std::string> {
    return std::string(2048, 'e');
  };
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(buffer.Get("f", i * 4096, crypto::kZeroHash, loader).ok());
  }
  EXPECT_GT(buffer.stats().evictions, 0u);
  EXPECT_LE(buffer.bytes_used(), 16u << 10);
  EXPECT_EQ(buffer.bytes_used(), buffer.ResidentBytes());
}

// --- concurrency (runs under the TSan CI matrix) ---------------------------

TEST(ReadCacheConcurrencyTest, SingleFlightCollapsesDuplicateMisses) {
  auto enclave = MakeEnclave();
  ReadBuffer buffer(enclave, 64 << 10, BufferPlacement::kOutsideEnclave, 4);
  std::atomic<int> loads{0};
  auto slow_loader = [&]() -> Result<std::string> {
    loads.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return std::string(1024, 's');
  };
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto r = buffer.Get("f", 0, crypto::kZeroHash, slow_loader);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.value()->size(), 1024u);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(loads.load(), 1);
  const auto stats = buffer.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, kThreads - 1u);
}

TEST(ReadCacheConcurrencyTest, ConcurrentMissStressKeepsExactAccounting) {
  // The regression this guards: a duplicate-miss overwrite used to leak the
  // old entry's size into bytes_used_ and strand its LRU node, permanently
  // shrinking effective capacity. After an all-out stress run the byte
  // ledger must equal the sum of resident entries exactly.
  auto enclave = MakeEnclave();
  ReadBuffer buffer(enclave, 48 << 10, BufferPlacement::kOutsideEnclave, 4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 600;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(1000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int file = rng() % 3;
        const uint64_t offset = (rng() % 24) * 512;
        const size_t size = 256 + rng() % 1536;
        auto loader = [size]() -> Result<std::string> {
          return std::string(size, 'm');
        };
        const std::string name = "f" + std::to_string(file);
        auto r = buffer.Get(name, offset, crypto::kZeroHash, loader);
        ASSERT_TRUE(r.ok());
        if (i % 97 == 0) buffer.Invalidate(name);
        if (i % 53 == 0) {
          (void)buffer.stats();
          (void)buffer.bytes_used();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(buffer.bytes_used(), buffer.ResidentBytes());
  EXPECT_LE(buffer.bytes_used(), 48u << 10);
  const auto stats = buffer.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            uint64_t(kThreads) * uint64_t(kOpsPerThread));
}

TEST(ReadCacheConcurrencyTest, InvalidateRacesLoadersWithoutStaleInstall) {
  // An Invalidate landing while a miss is in flight must not let the flight
  // install its (now dead) block behind the invalidation.
  auto enclave = MakeEnclave();
  ReadBuffer buffer(enclave, 64 << 10, BufferPlacement::kOutsideEnclave, 2);
  std::atomic<bool> stop{false};
  std::thread invalidator([&] {
    while (!stop.load()) {
      buffer.Invalidate("f0");
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937 rng(t);
      for (int i = 0; i < 400; ++i) {
        const uint64_t offset = (rng() % 8) * 512;
        auto loader = []() -> Result<std::string> {
          return std::string(512, 'r');
        };
        auto r = buffer.Get("f0", offset, crypto::kZeroHash, loader);
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(r.value()->size(), 512u);
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  invalidator.join();
  buffer.Invalidate("f0");
  EXPECT_EQ(buffer.bytes_used(), buffer.ResidentBytes());
  EXPECT_EQ(buffer.ResidentBytes(), 0u);
}

// --- lifecycle: compaction's purge must sweep every cache layer ------------

TEST(ReadCacheLifecycleTest, ObsoleteFilePurgeEvictsBufferAndTreeHandles) {
  Options o = BufferOptions();
  auto db = ElsmDb::Create(o);
  ASSERT_TRUE(db.ok());
  auto& store = *db.value();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store.Put(Key(i), "gen0-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(store.CompactAll().ok());
  // Populate block cache + tree-handle cache against generation 0.
  for (int i = 0; i < 200; i += 5) {
    auto r = store.GetVerified(Key(i));
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().record.has_value());
  }
  EXPECT_GT(store.read_cache_stats().misses, 0u);
  EXPECT_GT(store.cached_tree_handles(), 0u);

  // Generation 1 rewrites the level stack; the old SSTables and sidecars
  // retire through the tracker purge, which must sweep the caches.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store.Put(Key(i), "gen1-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(store.CompactAll().ok());
  EXPECT_GT(store.read_cache_stats().invalidations, 0u);
  // Only handles for live sidecars may remain (one per non-empty level).
  size_t live_trees = 0;
  for (const auto& level : store.engine().levels()) {
    if (!level.tree_file.empty()) ++live_trees;
  }
  EXPECT_LE(store.cached_tree_handles(), live_trees);

  // Reads against the new generation verify cleanly (nothing stale served).
  for (int i = 0; i < 200; i += 5) {
    auto r = store.GetVerified(Key(i));
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().record.has_value());
    EXPECT_EQ(r.value().record->value, "gen1-" + std::to_string(i));
  }
}

// --- warm-hit budget: zero I/O, zero path re-hashing -----------------------

TEST(ReadCacheCounterTest, WarmVerifiedGetSkipsIoAndPathHashing) {
  Options o = BufferOptions();
  auto db = ElsmDb::Create(o);
  ASSERT_TRUE(db.ok());
  auto& store = *db.value();
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(store.Put(Key(i), "value-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(store.CompactAll().ok());

  const std::string hot = Key(137);
  auto cold = store.GetVerified(hot);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(cold.value().verified);
  const auto cold_counters = store.enclave().counters();
  const auto cold_paths = store.proof_path_cache_stats();
  EXPECT_GT(cold_paths.path_nodes_hashed, 0u);

  auto warm = store.GetVerified(hot);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm.value().verified);
  ASSERT_TRUE(warm.value().record.has_value());
  EXPECT_EQ(warm.value().record->value, "value-137");
  const auto warm_counters = store.enclave().counters();
  const auto warm_paths = store.proof_path_cache_stats();

  // Warm hit: no filesystem reads, no world switches for block loads, and
  // the Merkle climb short-circuits at the cached leaf — zero path nodes
  // re-hashed. Only the per-record chain hash (a few dozen bytes) remains.
  EXPECT_EQ(warm_counters.file_bytes_read, cold_counters.file_bytes_read);
  EXPECT_EQ(warm_counters.ocalls, cold_counters.ocalls);
  EXPECT_EQ(warm_paths.path_nodes_hashed, cold_paths.path_nodes_hashed);
  EXPECT_GT(warm_paths.hits, cold_paths.hits);
  const uint64_t warm_hashed =
      warm_counters.bytes_hashed - cold_counters.bytes_hashed;
  EXPECT_LT(warm_hashed, 512u);
  const auto cache = store.read_cache_stats();
  EXPECT_GT(cache.hits, 0u);
}

TEST(ReadCacheCounterTest, PathCacheDisabledStillVerifies) {
  Options o = BufferOptions();
  o.proof_path_cache_entries = 0;
  auto db = ElsmDb::Create(o);
  ASSERT_TRUE(db.ok());
  auto& store = *db.value();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.Put(Key(i), "v").ok());
  }
  ASSERT_TRUE(store.CompactAll().ok());
  for (int pass = 0; pass < 2; ++pass) {
    auto r = store.GetVerified(Key(42));
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().record.has_value());
  }
  EXPECT_EQ(store.proof_path_cache_stats().lookups, 0u);
}

// --- tamper: cached hits stay safe, dropped caches fail closed -------------

TEST(ReadCacheTamperTest, CorruptedFileFailsClosedOnceCachesDrop) {
  Options o = BufferOptions();
  auto platform = std::make_shared<TrustedPlatform>();
  auto enclave = std::make_shared<sgx::Enclave>(o.cost_model, true);
  auto fs = std::make_shared<storage::SimFs>(enclave);
  auto db = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.value()->Put(Key(i), "payload-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db.value()->CompactAll().ok());
  const std::string hot = Key(77);
  ASSERT_TRUE(db.value()->GetVerified(hot).ok());  // warms every cache

  // The host corrupts every data block of every SSTable on "disk".
  for (const auto& level : db.value()->engine().levels()) {
    for (const auto& file : level.files) {
      auto blob = fs->MutableBlob(file.name);
      ASSERT_NE(blob, nullptr);
      for (const auto& block : file.blocks) {
        (*blob)[block.offset] ^= 0x01;
      }
    }
  }

  // A warm hit still serves: its bytes were verified against the sealed
  // digest before admission, and a hit performs no I/O to re-read the
  // now-corrupt file.
  auto warm = db.value()->GetVerified(hot);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.value().record->value, "payload-77");

  // Reopen drops every cache; the same read must now fail closed at the
  // digest check instead of serving corrupt bytes.
  ASSERT_TRUE(db.value()->Close().ok());
  db.value().reset();
  auto reopened = ElsmDb::Open(o, fs, platform);
  ASSERT_TRUE(reopened.ok());
  auto tampered = reopened.value()->GetVerified(hot);
  ASSERT_FALSE(tampered.ok());
  EXPECT_TRUE(tampered.status().IsAuthFailure());
}

}  // namespace
}  // namespace elsm
