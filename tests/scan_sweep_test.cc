// Exhaustive verified-scan boundary sweep: every (lo, hi) grid pair over a
// multi-level store is scanned with completeness verification and checked
// against a reference model. This is the test class that catches
// block/file/leaf boundary-alignment bugs in range-proof assembly.
#include <gtest/gtest.h>

#include <map>

#include "elsm/elsm_db.h"

namespace elsm {
namespace {

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%05d", i);
  return buf;
}

class ScanSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ScanSweepTest, AllGridRangesMatchReference) {
  const int stride = GetParam();  // keys are multiples of the stride
  Options o;
  o.mode = Mode::kP2;
  o.memtable_bytes = 2 << 10;
  o.level1_bytes = 8 << 10;
  o.block_bytes = 512;  // tiny blocks: many boundaries
  o.file_bytes = 2 << 10;
  auto db = ElsmDb::Create(o);
  ASSERT_TRUE(db.ok());

  std::map<std::string, std::string> model;
  // Two generations spread across levels, sparse keys (gaps exercise
  // non-membership edges), a few deletions.
  for (int gen = 0; gen < 2; ++gen) {
    for (int i = 0; i < 120; ++i) {
      const std::string key = Key(i * stride);
      const std::string value = "g" + std::to_string(gen) + "-" + key;
      ASSERT_TRUE(db.value()->Put(key, value).ok());
      model[key] = value;
    }
    ASSERT_TRUE(gen == 0 ? db.value()->CompactAll().ok()
                         : db.value()->Flush().ok());
  }
  for (int i = 10; i < 30; i += 3) {
    const std::string key = Key(i * stride);
    ASSERT_TRUE(db.value()->Delete(key).ok());
    model.erase(key);
  }
  ASSERT_TRUE(db.value()->Flush().ok());

  // Grid sweep, including ranges aligned exactly on keys, off-key ranges,
  // empty ranges, and ranges beyond both ends.
  for (int lo = -2; lo < 125 * stride; lo += 7) {
    for (int span : {0, 1, 3, 17, 400}) {
      const std::string k1 = lo < 0 ? "a" : Key(lo);
      const std::string k2 = Key(lo + span);
      auto scan = db.value()->Scan(k1, k2);
      ASSERT_TRUE(scan.ok())
          << scan.status().ToString() << " [" << k1 << "," << k2 << "]";
      std::map<std::string, std::string> expect;
      for (auto it = model.lower_bound(k1);
           it != model.end() && it->first <= k2; ++it) {
        expect[it->first] = it->second;
      }
      ASSERT_EQ(scan.value().size(), expect.size())
          << "[" << k1 << "," << k2 << "]";
      for (const auto& r : scan.value()) {
        auto it = expect.find(r.key);
        ASSERT_NE(it, expect.end()) << r.key;
        EXPECT_EQ(r.value, it->second);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, ScanSweepTest, ::testing::Values(1, 2, 5),
                         [](const auto& info) {
                           return "Stride" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace elsm
