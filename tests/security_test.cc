// Security tests (paper §3.3 threats, §5.3.1 protocol analysis): every
// attack the untrusted host can mount must be rejected by VRFY, and the
// rollback/freshness machinery must catch state replays across restarts.
#include <gtest/gtest.h>

#include "auth/adversary.h"
#include "auth/proof.h"
#include "auth/verifier.h"
#include "elsm/elsm_db.h"
#include "storage/simfs.h"
#include "temp_dir.h"

namespace elsm {
namespace {

Options SmallOptions() {
  Options o;
  o.mode = Mode::kP2;
  o.memtable_bytes = 4 << 10;
  o.level1_bytes = 16 << 10;
  o.block_bytes = 1024;
  o.file_bytes = 8 << 10;
  return o;
}

std::string Key(int i) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

// Fixture giving tests direct access to the engine / assembler / verifier
// triple so attacks can be mounted between assembly and verification.
// Parameterized over the storage backend: every attack must be rejected
// identically whether the untrusted disk is the in-memory SimFs or real
// files under a scratch directory (PosixFs).
class SecurityTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    Options o = SmallOptions();
    if (std::string(GetParam()) == "posix") {
      ASSERT_TRUE(dir_.ok());
      o.backend = storage::BackendKind::kPosix;
      o.backend_dir = dir_.path();
    }
    auto db = ElsmDb::Create(o);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    // Two generations of every key so stale-record attacks have material.
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(db_->Put(Key(i), "gen0-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(db_->CompactAll().ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(db_->Put(Key(i), "gen1-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(db_->CompactAll().ok());
  }

  Result<auth::AssembledGet> AssembleFor(const std::string& key,
                                         uint64_t ts_max = kLatest) {
    auto resp = db_->engine().Get(key, ts_max);
    if (!resp.ok()) return resp.status();
    auth::ProofAssembler assembler(
        std::shared_ptr<storage::Fs>(&db_->fs(), [](auto*) {}));
    return assembler.AssembleGet(resp.value(), db_->engine().levels());
  }

  Result<auth::AssembledScan> AssembleScanFor(const std::string& k1,
                                              const std::string& k2) {
    auto resp = db_->engine().Scan(k1, k2);
    if (!resp.ok()) return resp.status();
    auth::ProofAssembler assembler(
        std::shared_ptr<storage::Fs>(&db_->fs(), [](auto*) {}));
    return assembler.AssembleScan(resp.value(), db_->engine().levels());
  }

  Status VerifyGet(const std::string& key, const auth::AssembledGet& proof) {
    auth::Verifier verifier(&db_->enclave());
    auto result = verifier.VerifyGet(key, kLatest, proof,
                                     db_->engine().levels());
    return result.status();
  }

  Status VerifyScan(const std::string& k1, const std::string& k2,
                    const auth::AssembledScan& proof) {
    auth::Verifier verifier(&db_->enclave());
    auto result =
        verifier.VerifyScan(k1, k2, proof, db_->engine().levels());
    return result.status();
  }

  test_util::TempDir dir_;
  std::unique_ptr<ElsmDb> db_;
};

INSTANTIATE_TEST_SUITE_P(Backends, SecurityTest,
                         ::testing::Values("sim", "posix"));

TEST_P(SecurityTest, HonestProofVerifies) {
  auto proof = AssembleFor(Key(50));
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(VerifyGet(Key(50), proof.value()).ok());
}

TEST_P(SecurityTest, ForgedValueRejected) {
  auto proof = AssembleFor(Key(50));
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(auth::Adversary::ForgeResultValue(&proof.value()));
  const Status s = VerifyGet(Key(50), proof.value());
  EXPECT_TRUE(s.IsAuthFailure()) << s.ToString();
}

TEST_P(SecurityTest, StaleRecordWithinLevelRejected) {
  // Compacted store: both generations of Key(50) share one level's chain.
  // The adversary fetches the *old* record (it sits in the level with its
  // own legitimate embedded proof) and presents it as the latest answer.
  auto newest = db_->GetVerified(Key(50));
  ASSERT_TRUE(newest.ok());
  ASSERT_TRUE(newest.value().record.has_value());
  const uint64_t newest_ts = newest.value().record->ts;

  // Time-travel assembly exposes the stale record plus the newer chain
  // prefix; the attack then *hides* the newer record.
  auto proof = AssembleFor(Key(50), newest_ts - 1);
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(auth::Adversary::ServeStaleWithinLevel(&proof.value()))
      << "expected a >=2-record chain for the stale attack";
  const Status s = VerifyGet(Key(50), proof.value());
  EXPECT_TRUE(s.IsAuthFailure()) << s.ToString();
}

TEST_P(SecurityTest, SuppressedHitRejected) {
  auto proof = AssembleFor(Key(50));
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(auth::Adversary::SuppressShallowHit(&proof.value()));
  const Status s = VerifyGet(Key(50), proof.value());
  EXPECT_TRUE(s.IsAuthFailure()) << s.ToString();
}

TEST_P(SecurityTest, ClaimedMissRejected) {
  auto proof = AssembleFor(Key(50));
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(auth::Adversary::ClaimMissingKey(&proof.value()));
  const Status s = VerifyGet(Key(50), proof.value());
  EXPECT_TRUE(s.IsAuthFailure()) << s.ToString();
}

TEST_P(SecurityTest, DroppedScanRecordRejected) {
  auto proof = AssembleScanFor(Key(40), Key(60));
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(auth::Adversary::DropScanRecord(&proof.value()));
  const Status s = VerifyScan(Key(40), Key(60), proof.value());
  EXPECT_TRUE(s.IsAuthFailure()) << s.ToString();
}

TEST_P(SecurityTest, HonestScanVerifies) {
  auto proof = AssembleScanFor(Key(40), Key(60));
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(VerifyScan(Key(40), Key(60), proof.value()).ok());
}

TEST_P(SecurityTest, TamperedSstableDetectedOnRead) {
  // Corrupt a data file on disk; the next GET touching it must fail
  // verification (or block parsing) rather than return the tampered bytes.
  std::string victim;
  for (const auto& name : db_->fs().List(db_->options().name)) {
    if (name.ends_with(".sst")) {
      victim = name;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  ASSERT_TRUE(auth::Adversary::CorruptFile(db_->fs(), victim, 100));

  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    auto got = db_->GetVerified(Key(i));
    if (!got.ok()) {
      EXPECT_TRUE(got.status().IsAuthFailure() ||
                  got.status().IsCorruption())
          << got.status().ToString();
      ++failures;
    }
  }
  EXPECT_GT(failures, 0);
}

TEST_P(SecurityTest, TamperedTreeSidecarDetected) {
  std::string victim;
  for (const auto& name : db_->fs().List(db_->options().name)) {
    if (name.ends_with(".tree")) {
      victim = name;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  // Flip a hash byte beyond the header.
  ASSERT_TRUE(auth::Adversary::CorruptFile(db_->fs(), victim, 48));

  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    auto got = db_->GetVerified(Key(i));
    if (!got.ok()) ++failures;
  }
  EXPECT_GT(failures, 0);
}

TEST_P(SecurityTest, TamperedInputAbortsCompaction) {
  // Corrupt a level file, then force a compaction over it: the in-enclave
  // input digest check (Fig. 4 lines 31-33) must abort the merge.
  std::string victim;
  for (const auto& name : db_->fs().List(db_->options().name)) {
    if (name.ends_with(".sst")) victim = name;  // deepest file listed last
  }
  ASSERT_FALSE(victim.empty());
  ASSERT_TRUE(auth::Adversary::CorruptFile(db_->fs(), victim, 7));
  for (int i = 0; i < 200; ++i) {
    (void)db_->Put(Key(i), "gen2");
  }
  const Status s = db_->CompactAll();
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsAuthFailure() || s.IsCorruption()) << s.ToString();
}

TEST(RollbackTest, RestoredOldStateDetectedOnReopen) {
  Options options;
  options.mode = Mode::kP2;
  options.memtable_bytes = 4 << 10;
  options.level1_bytes = 16 << 10;
  auto platform = std::make_shared<TrustedPlatform>();
  auto enclave = std::make_shared<sgx::Enclave>(options.cost_model, true);
  auto fs = std::make_shared<storage::SimFs>(enclave);

  // Epoch 1: some data, then snapshot the whole "disk".
  {
    auto db = ElsmDb::Open(options, fs, platform);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "epoch1").ok());
    }
    ASSERT_TRUE(db.value()->Close().ok());
  }
  std::map<std::string, std::string> snapshot;
  for (const auto& name : fs->List("")) {
    snapshot[name] = *fs->Blob(name);
  }

  // Epoch 2: overwrite the data (bumps the monotonic counter on flush).
  {
    auto db = ElsmDb::Open(options, fs, platform);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "epoch2").ok());
    }
    ASSERT_TRUE(db.value()->Flush().ok());
    ASSERT_TRUE(db.value()->Close().ok());
  }

  // Adversary rolls the disk back to the (authentic!) epoch-1 state.
  for (const auto& name : fs->List("")) {
    if (!snapshot.count(name)) (void)fs->Delete(name);
  }
  for (const auto& [name, bytes] : snapshot) {
    ASSERT_TRUE(fs->Write(name, bytes).ok());
  }

  auto db = ElsmDb::Open(options, fs, platform);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsRollbackDetected()) << db.status().ToString();
}

TEST(RollbackTest, TruncatedWalDetectedOnReopen) {
  Options options;
  options.mode = Mode::kP2;
  options.memtable_bytes = 64 << 10;  // keep everything in the WAL
  auto platform = std::make_shared<TrustedPlatform>();
  auto enclave = std::make_shared<sgx::Enclave>(options.cost_model, true);
  auto fs = std::make_shared<storage::SimFs>(enclave);
  {
    auto db = ElsmDb::Open(options, fs, platform);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "v").ok());
    }
    ASSERT_TRUE(db.value()->Close().ok());  // seals digest over 50 records
  }
  // Drop the tail of the WAL.
  auto wal = fs->MutableBlob(options.name + "/wal");
  ASSERT_NE(wal, nullptr);
  wal->resize(wal->size() / 2);

  auto db = ElsmDb::Open(options, fs, platform);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsRollbackDetected() ||
              db.status().IsAuthFailure())
      << db.status().ToString();
}

TEST(RollbackTest, TamperedWalRecordDetectedOnReopen) {
  Options options;
  options.mode = Mode::kP2;
  options.memtable_bytes = 64 << 10;
  auto platform = std::make_shared<TrustedPlatform>();
  auto enclave = std::make_shared<sgx::Enclave>(options.cost_model, true);
  auto fs = std::make_shared<storage::SimFs>(enclave);
  {
    auto db = ElsmDb::Open(options, fs, platform);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "genuine").ok());
    }
    ASSERT_TRUE(db.value()->Close().ok());
  }
  // Flip one payload byte inside a WAL frame *and* fix up the frame
  // checksum so only the in-enclave digest can catch it.
  auto wal = fs->MutableBlob(options.name + "/wal");
  ASSERT_NE(wal, nullptr);
  // Frame: 4B len, 4B cksum, payload. Flip a payload byte of frame 0 and
  // recompute the frame checksum over the mutated payload.
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= uint32_t(uint8_t((*wal)[size_t(i)])) << (8 * i);
  }
  ASSERT_GT(len, 20u);
  (*wal)[8 + len - 2] ^= 0x01;
  const auto digest =
      crypto::Sha256::Digest(std::string_view(wal->data() + 8, len));
  for (int i = 0; i < 4; ++i) (*wal)[size_t(4 + i)] = char(digest[size_t(i)]);

  auto db = ElsmDb::Open(options, fs, platform);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsAuthFailure()) << db.status().ToString();
}

TEST(ManifestTest, TamperedManifestSealRejected) {
  Options options;
  options.mode = Mode::kP2;
  auto platform = std::make_shared<TrustedPlatform>();
  auto enclave = std::make_shared<sgx::Enclave>(options.cost_model, true);
  auto fs = std::make_shared<storage::SimFs>(enclave);
  {
    auto db = ElsmDb::Open(options, fs, platform);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.value()->Put("a", "b").ok());
    ASSERT_TRUE(db.value()->Close().ok());
  }
  ASSERT_TRUE(
      auth::Adversary::CorruptFile(*fs, options.name + "/MANIFEST", 3));
  auto db = ElsmDb::Open(options, fs, platform);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsAuthFailure()) << db.status().ToString();
}

}  // namespace
}  // namespace elsm
