// Security tests (paper §3.3 threats, §5.3.1 protocol analysis): every
// attack the untrusted host can mount must be rejected by VRFY, and the
// rollback/freshness machinery must catch state replays across restarts.
#include <gtest/gtest.h>

#include "auth/adversary.h"
#include "auth/proof.h"
#include "auth/verifier.h"
#include "common/coding.h"
#include "elsm/elsm_db.h"
#include "storage/simfs.h"
#include "temp_dir.h"

namespace elsm {
namespace {

Options SmallOptions() {
  Options o;
  o.mode = Mode::kP2;
  o.memtable_bytes = 4 << 10;
  o.level1_bytes = 16 << 10;
  o.block_bytes = 1024;
  o.file_bytes = 8 << 10;
  return o;
}

std::string Key(int i) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

// Fixture giving tests direct access to the engine / assembler / verifier
// triple so attacks can be mounted between assembly and verification.
// Parameterized over the storage backend: every attack must be rejected
// identically whether the untrusted disk is the in-memory SimFs or real
// files under a scratch directory (PosixFs).
class SecurityTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    Options o = SmallOptions();
    if (std::string(GetParam()) == "posix") {
      ASSERT_TRUE(dir_.ok());
      o.backend = storage::BackendKind::kPosix;
      o.backend_dir = dir_.path();
    }
    auto db = ElsmDb::Create(o);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    // Two generations of every key so stale-record attacks have material.
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(db_->Put(Key(i), "gen0-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(db_->CompactAll().ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(db_->Put(Key(i), "gen1-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(db_->CompactAll().ok());
  }

  Result<auth::AssembledGet> AssembleFor(const std::string& key,
                                         uint64_t ts_max = kLatest) {
    auto resp = db_->engine().Get(key, ts_max);
    if (!resp.ok()) return resp.status();
    auth::ProofAssembler assembler(
        std::shared_ptr<storage::Fs>(&db_->fs(), [](auto*) {}));
    return assembler.AssembleGet(resp.value(), db_->engine().levels());
  }

  Result<auth::AssembledScan> AssembleScanFor(const std::string& k1,
                                              const std::string& k2) {
    auto resp = db_->engine().Scan(k1, k2);
    if (!resp.ok()) return resp.status();
    auth::ProofAssembler assembler(
        std::shared_ptr<storage::Fs>(&db_->fs(), [](auto*) {}));
    return assembler.AssembleScan(resp.value(), db_->engine().levels());
  }

  Status VerifyGet(const std::string& key, const auth::AssembledGet& proof) {
    auth::Verifier verifier(&db_->enclave());
    auto result = verifier.VerifyGet(key, kLatest, proof,
                                     db_->engine().levels());
    return result.status();
  }

  Status VerifyScan(const std::string& k1, const std::string& k2,
                    const auth::AssembledScan& proof) {
    auth::Verifier verifier(&db_->enclave());
    auto result =
        verifier.VerifyScan(k1, k2, proof, db_->engine().levels());
    return result.status();
  }

  test_util::TempDir dir_;
  std::unique_ptr<ElsmDb> db_;
};

INSTANTIATE_TEST_SUITE_P(Backends, SecurityTest,
                         ::testing::Values("sim", "posix"));

TEST_P(SecurityTest, HonestProofVerifies) {
  auto proof = AssembleFor(Key(50));
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(VerifyGet(Key(50), proof.value()).ok());
}

TEST_P(SecurityTest, ForgedValueRejected) {
  auto proof = AssembleFor(Key(50));
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(auth::Adversary::ForgeResultValue(&proof.value()));
  const Status s = VerifyGet(Key(50), proof.value());
  EXPECT_TRUE(s.IsAuthFailure()) << s.ToString();
}

TEST_P(SecurityTest, StaleRecordWithinLevelRejected) {
  // Compacted store: both generations of Key(50) share one level's chain.
  // The adversary fetches the *old* record (it sits in the level with its
  // own legitimate embedded proof) and presents it as the latest answer.
  auto newest = db_->GetVerified(Key(50));
  ASSERT_TRUE(newest.ok());
  ASSERT_TRUE(newest.value().record.has_value());
  const uint64_t newest_ts = newest.value().record->ts;

  // Time-travel assembly exposes the stale record plus the newer chain
  // prefix; the attack then *hides* the newer record.
  auto proof = AssembleFor(Key(50), newest_ts - 1);
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(auth::Adversary::ServeStaleWithinLevel(&proof.value()))
      << "expected a >=2-record chain for the stale attack";
  const Status s = VerifyGet(Key(50), proof.value());
  EXPECT_TRUE(s.IsAuthFailure()) << s.ToString();
}

TEST_P(SecurityTest, SuppressedHitRejected) {
  auto proof = AssembleFor(Key(50));
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(auth::Adversary::SuppressShallowHit(&proof.value()));
  const Status s = VerifyGet(Key(50), proof.value());
  EXPECT_TRUE(s.IsAuthFailure()) << s.ToString();
}

TEST_P(SecurityTest, ClaimedMissRejected) {
  auto proof = AssembleFor(Key(50));
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(auth::Adversary::ClaimMissingKey(&proof.value()));
  const Status s = VerifyGet(Key(50), proof.value());
  EXPECT_TRUE(s.IsAuthFailure()) << s.ToString();
}

TEST_P(SecurityTest, DroppedScanRecordRejected) {
  auto proof = AssembleScanFor(Key(40), Key(60));
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(auth::Adversary::DropScanRecord(&proof.value()));
  const Status s = VerifyScan(Key(40), Key(60), proof.value());
  EXPECT_TRUE(s.IsAuthFailure()) << s.ToString();
}

TEST_P(SecurityTest, HonestScanVerifies) {
  auto proof = AssembleScanFor(Key(40), Key(60));
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(VerifyScan(Key(40), Key(60), proof.value()).ok());
}

TEST_P(SecurityTest, TamperedSstableDetectedOnRead) {
  // Corrupt a data file on disk; the next GET touching it must fail
  // verification (or block parsing) rather than return the tampered bytes.
  std::string victim;
  for (const auto& name : db_->fs().List(db_->options().name)) {
    if (name.ends_with(".sst")) {
      victim = name;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  ASSERT_TRUE(auth::Adversary::CorruptFile(db_->fs(), victim, 100));

  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    auto got = db_->GetVerified(Key(i));
    if (!got.ok()) {
      EXPECT_TRUE(got.status().IsAuthFailure() ||
                  got.status().IsCorruption())
          << got.status().ToString();
      ++failures;
    }
  }
  EXPECT_GT(failures, 0);
}

TEST_P(SecurityTest, TamperedTreeSidecarDetected) {
  std::string victim;
  for (const auto& name : db_->fs().List(db_->options().name)) {
    if (name.ends_with(".tree")) {
      victim = name;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  // Flip a hash byte beyond the header.
  ASSERT_TRUE(auth::Adversary::CorruptFile(db_->fs(), victim, 48));

  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    auto got = db_->GetVerified(Key(i));
    if (!got.ok()) ++failures;
  }
  EXPECT_GT(failures, 0);
}

TEST_P(SecurityTest, TamperedInputAbortsCompaction) {
  // Corrupt a level file, then force a compaction over it: the in-enclave
  // input digest check (Fig. 4 lines 31-33) must abort the merge.
  std::string victim;
  for (const auto& name : db_->fs().List(db_->options().name)) {
    if (name.ends_with(".sst")) victim = name;  // deepest file listed last
  }
  ASSERT_FALSE(victim.empty());
  ASSERT_TRUE(auth::Adversary::CorruptFile(db_->fs(), victim, 7));
  for (int i = 0; i < 200; ++i) {
    (void)db_->Put(Key(i), "gen2");
  }
  const Status s = db_->CompactAll();
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsAuthFailure() || s.IsCorruption()) << s.ToString();
}

TEST(RollbackTest, RestoredOldStateDetectedOnReopen) {
  Options options;
  options.mode = Mode::kP2;
  options.memtable_bytes = 4 << 10;
  options.level1_bytes = 16 << 10;
  auto platform = std::make_shared<TrustedPlatform>();
  auto enclave = std::make_shared<sgx::Enclave>(options.cost_model, true);
  auto fs = std::make_shared<storage::SimFs>(enclave);

  // Epoch 1: some data, then snapshot the whole "disk".
  {
    auto db = ElsmDb::Open(options, fs, platform);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "epoch1").ok());
    }
    ASSERT_TRUE(db.value()->Close().ok());
  }
  std::map<std::string, std::string> snapshot;
  for (const auto& name : fs->List("")) {
    snapshot[name] = *fs->Blob(name);
  }

  // Epoch 2: overwrite the data (bumps the monotonic counter on flush).
  {
    auto db = ElsmDb::Open(options, fs, platform);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "epoch2").ok());
    }
    ASSERT_TRUE(db.value()->Flush().ok());
    ASSERT_TRUE(db.value()->Close().ok());
  }

  // Adversary rolls the disk back to the (authentic!) epoch-1 state.
  for (const auto& name : fs->List("")) {
    if (!snapshot.count(name)) (void)fs->Delete(name);
  }
  for (const auto& [name, bytes] : snapshot) {
    ASSERT_TRUE(fs->Write(name, bytes).ok());
  }

  auto db = ElsmDb::Open(options, fs, platform);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsRollbackDetected()) << db.status().ToString();
}

TEST(RollbackTest, TruncatedWalDetectedOnReopen) {
  Options options;
  options.mode = Mode::kP2;
  options.memtable_bytes = 64 << 10;  // keep everything in the WAL
  auto platform = std::make_shared<TrustedPlatform>();
  auto enclave = std::make_shared<sgx::Enclave>(options.cost_model, true);
  auto fs = std::make_shared<storage::SimFs>(enclave);
  {
    auto db = ElsmDb::Open(options, fs, platform);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "v").ok());
    }
    ASSERT_TRUE(db.value()->Close().ok());  // seals digest over 50 records
  }
  // Drop the tail of the WAL.
  auto wal = fs->MutableBlob(options.name + "/wal");
  ASSERT_NE(wal, nullptr);
  wal->resize(wal->size() / 2);

  auto db = ElsmDb::Open(options, fs, platform);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsRollbackDetected() ||
              db.status().IsAuthFailure())
      << db.status().ToString();
}

TEST(RollbackTest, TamperedWalRecordDetectedOnReopen) {
  Options options;
  options.mode = Mode::kP2;
  options.memtable_bytes = 64 << 10;
  auto platform = std::make_shared<TrustedPlatform>();
  auto enclave = std::make_shared<sgx::Enclave>(options.cost_model, true);
  auto fs = std::make_shared<storage::SimFs>(enclave);
  {
    auto db = ElsmDb::Open(options, fs, platform);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "genuine").ok());
    }
    ASSERT_TRUE(db.value()->Close().ok());
  }
  // Flip one payload byte inside a WAL frame *and* fix up the frame
  // checksum so only the in-enclave digest can catch it.
  auto wal = fs->MutableBlob(options.name + "/wal");
  ASSERT_NE(wal, nullptr);
  // Frame: 4B len, 4B cksum, payload. Flip a payload byte of frame 0 and
  // recompute the frame checksum over the mutated payload.
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= uint32_t(uint8_t((*wal)[size_t(i)])) << (8 * i);
  }
  ASSERT_GT(len, 20u);
  (*wal)[8 + len - 2] ^= 0x01;
  const auto digest =
      crypto::Sha256::Digest(std::string_view(wal->data() + 8, len));
  for (int i = 0; i < 4; ++i) (*wal)[size_t(4 + i)] = char(digest[size_t(i)]);

  auto db = ElsmDb::Open(options, fs, platform);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsAuthFailure()) << db.status().ToString();
}

TEST(ManifestTest, TamperedManifestSealRejected) {
  Options options;
  options.mode = Mode::kP2;
  auto platform = std::make_shared<TrustedPlatform>();
  auto enclave = std::make_shared<sgx::Enclave>(options.cost_model, true);
  auto fs = std::make_shared<storage::SimFs>(enclave);
  {
    auto db = ElsmDb::Open(options, fs, platform);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.value()->Put("a", "b").ok());
    ASSERT_TRUE(db.value()->Close().ok());
  }
  ASSERT_TRUE(
      auth::Adversary::CorruptFile(*fs, options.name + "/MANIFEST", 3));
  auto db = ElsmDb::Open(options, fs, platform);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsAuthFailure()) << db.status().ToString();
}

// --- manifest edit-log adversary --------------------------------------------
//
// The manifest is a sealed snapshot plus a hash-chained tail of sealed
// delta records (src/elsm/manifest_log.h). These tests attack the *log
// structure* — truncate, reorder, duplicate, splice across positions,
// replay a stale generation, drop the snapshot under the tail — using only
// the public Fs surface, so every attack runs identically against SimFs
// and PosixFs. All must fail closed.
class ManifestLogAdversaryTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    options_ = SmallOptions();
    options_.counter_sync_period = 1;       // every persist bumps
    options_.manifest_snapshot_edits = 100;  // keep the tail all-delta
    if (std::string(GetParam()) == "posix") {
      ASSERT_TRUE(dir_.ok());
      options_.backend = storage::BackendKind::kPosix;
      options_.backend_dir = dir_.path();
    }
    platform_ = std::make_shared<TrustedPlatform>();
    auto enclave = std::make_shared<sgx::Enclave>(options_.cost_model, true);
    fs_ = storage::MakeFs(options_.backend, options_.backend_dir, enclave);
    // Several flush rounds so the tail holds a chain of delta records.
    auto db = ElsmDb::Open(options_, fs_, platform_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < 40; ++i) {
        ASSERT_TRUE(
            db.value()
                ->Put(Key(round * 40 + i), "v" + std::to_string(round))
                .ok());
      }
      ASSERT_TRUE(db.value()->Flush().ok());
    }
    ASSERT_TRUE(db.value()->Close().ok());
  }

  Result<std::unique_ptr<ElsmDb>> Reopen() {
    return ElsmDb::Open(options_, fs_, platform_);
  }

  std::string TailName() {
    auto names = fs_->List(options_.name + "/EDITS-");
    EXPECT_EQ(names.size(), 1u) << "expected exactly one live tail file";
    return names.empty() ? std::string() : names[0];
  }

  // Splits the tail into self-contained frames (Fixed32 length + sealed
  // record each), so attacks can drop/reorder/duplicate whole records and
  // write the file back as a plain concatenation.
  std::vector<std::string> TailFrames() {
    auto raw = fs_->ReadAll(TailName());
    EXPECT_TRUE(raw.ok()) << raw.status().ToString();
    std::vector<std::string> frames;
    if (!raw.ok()) return frames;
    std::string_view cursor(raw.value());
    while (cursor.size() >= 4) {
      std::string_view peek = cursor;
      uint32_t len = 0;
      EXPECT_TRUE(GetFixed32(&peek, &len));
      if (peek.size() < len) break;
      frames.emplace_back(cursor.substr(0, 4 + len));
      cursor.remove_prefix(4 + len);
    }
    EXPECT_TRUE(cursor.empty()) << "torn tail in a cleanly closed store";
    return frames;
  }

  void WriteTail(const std::vector<std::string>& frames) {
    std::string raw;
    for (const std::string& frame : frames) raw += frame;
    ASSERT_TRUE(fs_->Write(TailName(), raw).ok());
  }

  test_util::TempDir dir_;
  Options options_;
  std::shared_ptr<TrustedPlatform> platform_;
  std::shared_ptr<storage::Fs> fs_;
};

INSTANTIATE_TEST_SUITE_P(Backends, ManifestLogAdversaryTest,
                         ::testing::Values("sim", "posix"));

TEST_P(ManifestLogAdversaryTest, HonestLogReplaysExactly) {
  auto db = Reopen();
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 40; ++i) {
      auto got = db.value()->GetVerified(Key(round * 40 + i));
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_TRUE(got.value().record.has_value());
      EXPECT_EQ(got.value().record->value, "v" + std::to_string(round));
    }
  }
  ASSERT_TRUE(db.value()->Close().ok());
}

TEST_P(ManifestLogAdversaryTest, TruncatedTailDetectedAsRollback) {
  // Dropping the newest record yields a perfectly well-formed shorter log
  // — an older acknowledged state. Only the counter can tell: the
  // surviving newest record's sealed counter is behind the hardware.
  auto frames = TailFrames();
  ASSERT_GE(frames.size(), 2u);
  frames.pop_back();
  WriteTail(frames);
  auto db = Reopen();
  ASSERT_FALSE(db.ok()) << "truncated manifest tail accepted";
  EXPECT_TRUE(db.status().IsRollbackDetected()) << db.status().ToString();
}

TEST_P(ManifestLogAdversaryTest, ReorderedTailRecordsDetected) {
  auto frames = TailFrames();
  ASSERT_GE(frames.size(), 2u);
  std::swap(frames[0], frames[1]);
  WriteTail(frames);
  auto db = Reopen();
  ASSERT_FALSE(db.ok()) << "reordered manifest tail accepted";
  EXPECT_TRUE(db.status().IsAuthFailure()) << db.status().ToString();
}

TEST_P(ManifestLogAdversaryTest, DuplicatedTailRecordDetected) {
  // Replaying a legitimate record at a second position breaks the strict
  // seq+1 rule even though every individual seal verifies.
  auto frames = TailFrames();
  ASSERT_GE(frames.size(), 1u);
  frames.push_back(frames.back());
  WriteTail(frames);
  auto db = Reopen();
  ASSERT_FALSE(db.ok()) << "duplicated manifest record accepted";
  EXPECT_TRUE(db.status().IsAuthFailure()) << db.status().ToString();
}

TEST_P(ManifestLogAdversaryTest, SnapshotSplicedIntoTailDetected) {
  // The snapshot file is validly sealed — framing it into the tail must
  // still fail on the record-kind check (a snapshot never rides the tail).
  auto manifest = fs_->ReadAll(options_.name + "/MANIFEST");
  ASSERT_TRUE(manifest.ok());
  auto frames = TailFrames();
  std::string spliced;
  PutFixed32(&spliced, static_cast<uint32_t>(manifest.value().size()));
  spliced += manifest.value();
  frames.push_back(spliced);
  WriteTail(frames);
  auto db = Reopen();
  ASSERT_FALSE(db.ok()) << "snapshot record accepted inside the tail";
  EXPECT_TRUE(db.status().IsAuthFailure()) << db.status().ToString();
}

TEST_P(ManifestLogAdversaryTest, DeltaRecordAsSnapshotDetected) {
  // Inverse splice: promote a validly sealed delta record to the snapshot
  // position.
  auto frames = TailFrames();
  ASSERT_GE(frames.size(), 1u);
  const std::string sealed_record = frames.back().substr(4);
  ASSERT_TRUE(fs_->Write(options_.name + "/MANIFEST", sealed_record).ok());
  auto db = Reopen();
  ASSERT_FALSE(db.ok()) << "delta record accepted as the snapshot";
  EXPECT_TRUE(db.status().IsAuthFailure() || db.status().IsCorruption())
      << db.status().ToString();
}

TEST_P(ManifestLogAdversaryTest, StaleLogGenerationReplayDetected) {
  // Capture the whole manifest log (snapshot + tail), advance the store,
  // then roll just the log files back to the authentic-but-stale capture.
  // The final replayed record's sealed counter is behind the hardware.
  std::map<std::string, std::string> capture;
  for (const std::string& name :
       {std::string(options_.name + "/MANIFEST"), TailName()}) {
    auto bytes = fs_->ReadAll(name);
    ASSERT_TRUE(bytes.ok());
    capture[name] = std::move(bytes).value();
  }
  {
    auto db = Reopen();
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "fresher").ok());
    }
    ASSERT_TRUE(db.value()->Flush().ok());
    ASSERT_TRUE(db.value()->Close().ok());
  }
  for (const auto& [name, bytes] : capture) {
    ASSERT_TRUE(fs_->Write(name, bytes).ok());
  }
  auto db = Reopen();
  ASSERT_FALSE(db.ok()) << "stale manifest log generation accepted";
  EXPECT_TRUE(db.status().IsRollbackDetected()) << db.status().ToString();
}

TEST_P(ManifestLogAdversaryTest, DroppedSnapshotUnderTailFailsClosed) {
  ASSERT_TRUE(fs_->Delete(options_.name + "/MANIFEST").ok());
  auto db = Reopen();
  ASSERT_FALSE(db.ok()) << "tail without its snapshot accepted";
  EXPECT_TRUE(db.status().IsRollbackDetected() || db.status().IsAuthFailure())
      << db.status().ToString();
}

TEST_P(ManifestLogAdversaryTest, CounterOneAheadWindowIsExactlyOne) {
  // The bump-after-durable ordering leaves one legal gap: the newest
  // sealed record may be exactly one ahead of the hardware counter (crash
  // after the record landed, before the bump). Recovery must sync the
  // hardware up for that gap and fail closed for any wider one — a
  // two-ahead record cannot result from any crash of the honest protocol.
  const uint64_t hw = platform_->counter.Read();
  ASSERT_GE(hw, 3u);

  auto two_behind = std::make_shared<TrustedPlatform>();
  two_behind->sealing_key = platform_->sealing_key;
  for (uint64_t i = 0; i + 2 < hw; ++i) two_behind->counter.Increment();
  auto rejected = ElsmDb::Open(options_, fs_, two_behind);
  ASSERT_FALSE(rejected.ok()) << "two-ahead sealed counter accepted";
  EXPECT_TRUE(rejected.status().IsCorruption())
      << rejected.status().ToString();

  auto one_behind = std::make_shared<TrustedPlatform>();
  one_behind->sealing_key = platform_->sealing_key;
  for (uint64_t i = 0; i + 1 < hw; ++i) one_behind->counter.Increment();
  auto db = ElsmDb::Open(options_, fs_, one_behind);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(one_behind->counter.Read(), hw)
      << "recovery must sync the hardware to the sealed value";
  ASSERT_TRUE(db.value()->Close().ok());
}

}  // namespace
}  // namespace elsm
