// Enclave-simulator tests: EPC LRU residency and fault behaviour, cost
// charging, disabled-mode passthrough, sealed storage, monotonic counter.
#include <gtest/gtest.h>

#include "sgxsim/counter.h"
#include "sgxsim/enclave.h"
#include "sgxsim/epc.h"
#include "sgxsim/sealed.h"

namespace elsm::sgx {
namespace {

TEST(EpcTest, ColdAccessFaultsOncePerPage) {
  EpcSimulator epc(64 * 4096, 4096);
  const RegionId r = epc.Register(1 << 20);
  EXPECT_EQ(epc.Access(r, 0, 4096 * 4), 4u);   // 4 cold pages
  EXPECT_EQ(epc.Access(r, 0, 4096 * 4), 0u);   // now resident
}

TEST(EpcTest, AccessSpanningPageBoundary) {
  EpcSimulator epc(64 * 4096, 4096);
  const RegionId r = epc.Register(1 << 20);
  EXPECT_EQ(epc.Access(r, 4000, 200), 2u);  // straddles two pages
}

TEST(EpcTest, WorkingSetBeyondCapacityThrashes) {
  EpcSimulator epc(8 * 4096, 4096);  // 8-page EPC
  const RegionId r = epc.Register(1 << 20);
  // Touch 16 pages round-robin: every access misses (classic LRU thrash).
  uint64_t faults = 0;
  for (int round = 0; round < 3; ++round) {
    for (uint64_t page = 0; page < 16; ++page) {
      faults += epc.Access(r, page * 4096, 1);
    }
  }
  EXPECT_EQ(faults, 48u);
}

TEST(EpcTest, WorkingSetWithinCapacityStaysResident) {
  EpcSimulator epc(8 * 4096, 4096);
  const RegionId r = epc.Register(1 << 20);
  uint64_t faults = 0;
  for (int round = 0; round < 5; ++round) {
    for (uint64_t page = 0; page < 8; ++page) {
      faults += epc.Access(r, page * 4096, 1);
    }
  }
  EXPECT_EQ(faults, 8u);  // cold misses only
}

TEST(EpcTest, LruEvictsColdestPage) {
  EpcSimulator epc(2 * 4096, 4096);
  const RegionId r = epc.Register(1 << 20);
  EXPECT_EQ(epc.Access(r, 0, 1), 1u);        // page 0
  EXPECT_EQ(epc.Access(r, 4096, 1), 1u);     // page 1
  EXPECT_EQ(epc.Access(r, 0, 1), 0u);        // page 0 now MRU
  EXPECT_EQ(epc.Access(r, 8192, 1), 1u);     // evicts page 1
  EXPECT_EQ(epc.Access(r, 0, 1), 0u);        // page 0 survived
  EXPECT_EQ(epc.Access(r, 4096, 1), 1u);     // page 1 was evicted
}

TEST(EpcTest, FreeDropsResidentPages) {
  EpcSimulator epc(8 * 4096, 4096);
  const RegionId r = epc.Register(1 << 20);
  epc.Access(r, 0, 4096 * 4);
  EXPECT_EQ(epc.resident_pages(), 4u);
  epc.Free(r);
  EXPECT_EQ(epc.resident_pages(), 0u);
}

TEST(EnclaveTest, WorldSwitchChargesAndCounts) {
  CostModel m;
  Enclave enclave(m, true);
  enclave.ChargeEcall();
  enclave.ChargeOcall();
  EXPECT_EQ(enclave.now_ns(), m.ecall_ns + m.ocall_ns);
  EXPECT_EQ(enclave.counters().ecalls, 1u);
  EXPECT_EQ(enclave.counters().ocalls, 1u);
}

TEST(EnclaveTest, DisabledModeSkipsEnclaveCosts) {
  CostModel m;
  Enclave enclave(m, false);
  enclave.ChargeEcall();
  enclave.ChargeOcall();
  EXPECT_EQ(enclave.now_ns(), 0u);
  const RegionId r = enclave.RegisterRegion(100 << 20);
  const uint64_t before = enclave.now_ns();
  enclave.AccessRegion(r, 50 << 20, 4096);
  // Only the untrusted-read per-byte cost; no faults.
  EXPECT_EQ(enclave.now_ns() - before, 4096 * m.untrusted_read_pb / 1000);
  EXPECT_EQ(enclave.counters().epc_faults, 0u);
}

TEST(EnclaveTest, RegionAccessBeyondEpcFaults) {
  CostModel m;
  m.epc_bytes = 16 * 4096;
  Enclave enclave(m, true);
  const RegionId r = enclave.RegisterRegion(1 << 20);
  for (uint64_t page = 0; page < 64; ++page) {
    enclave.AccessRegion(r, page * 4096, 1);
  }
  EXPECT_EQ(enclave.counters().epc_faults, 64u);
  // Re-touch the last 8 pages: resident.
  const uint64_t before = enclave.counters().epc_faults;
  for (uint64_t page = 56; page < 64; ++page) {
    enclave.AccessRegion(r, page * 4096, 1);
  }
  EXPECT_EQ(enclave.counters().epc_faults, before);
}

TEST(EnclaveTest, SoftwarePagingIsCheaperPerFault) {
  CostModel m;
  m.epc_bytes = 4 * 4096;
  Enclave hw(m, true);
  Enclave sw(m, true);
  const RegionId rh = hw.RegisterRegion(1 << 20);
  const RegionId rs = sw.RegisterRegion(1 << 20);
  for (uint64_t page = 0; page < 32; ++page) {
    hw.AccessRegion(rh, page * 4096, 1);
    sw.AccessRegion(rs, page * 4096, 1, /*software_paging=*/true);
  }
  EXPECT_GT(hw.now_ns(), sw.now_ns());
}

TEST(EnclaveTest, CostHelpersMatchModel) {
  CostModel m;
  Enclave enclave(m, true);
  enclave.ChargeHash(1000);
  EXPECT_EQ(enclave.now_ns(), m.HashCost(1000));
  EXPECT_EQ(enclave.counters().bytes_hashed, 1000u);
  const uint64_t t = enclave.now_ns();
  enclave.Copy(2000, true);
  EXPECT_EQ(enclave.now_ns() - t, m.CopyCost(2000, true));
}

TEST(SealedTest, RoundTrip) {
  const std::string blob = Seal("k", "payload-bytes");
  auto out = Unseal("k", blob);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), "payload-bytes");
}

TEST(SealedTest, WrongKeyRejected) {
  EXPECT_TRUE(Unseal("other", Seal("k", "p")).status().IsAuthFailure());
}

TEST(SealedTest, TamperRejected) {
  std::string blob = Seal("k", "payload");
  blob[2] ^= 1;
  EXPECT_TRUE(Unseal("k", blob).status().IsAuthFailure());
  EXPECT_FALSE(Unseal("k", "tiny").ok());
}

TEST(CounterTest, MonotoneAcrossIncrements) {
  MonotonicCounter c;
  EXPECT_EQ(c.Read(), 0u);
  EXPECT_EQ(c.Increment(), 1u);
  EXPECT_EQ(c.Increment(), 2u);
  EXPECT_EQ(c.Read(), 2u);
}

}  // namespace
}  // namespace elsm::sgx
