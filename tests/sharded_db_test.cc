// ShardedDb router tests: stable key routing, verified cross-shard scans
// (ordering + completeness vs a shadow map), persistence across reopen,
// and the cross-shard trust argument — tampering with one shard, dropping
// a whole shard's directory, swapping shard directories, re-partitioning
// under a different shard count, and deleting the super-manifest must all
// surface as errors (AuthFailure & friends), never as wrong answers.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "auth/adversary.h"
#include "common/coding.h"
#include "common/random.h"
#include "elsm/sharded_db.h"
#include "storage/fault_fs.h"

namespace elsm {
namespace {

Options ShardOptions() {
  Options o;
  o.mode = Mode::kP2;
  o.memtable_bytes = 4 << 10;
  o.level1_bytes = 16 << 10;
  o.level_ratio = 4;
  o.block_bytes = 1024;
  o.file_bytes = 8 << 10;
  return o;
}

std::string Key(int i) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

TEST(ShardedDbTest, RoutingIsStableAndCoversAllShards) {
  constexpr uint32_t kShards = 8;
  auto db = ShardedDb::Create(ShardOptions(), kShards);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  std::set<uint32_t> used;
  for (int i = 0; i < 500; ++i) {
    const std::string key = Key(i);
    const uint32_t shard = db.value()->ShardOf(key);
    ASSERT_LT(shard, kShards);
    // The free router function and the instance agree (tests/benches use
    // the former to predict placement).
    EXPECT_EQ(shard, ShardForKey(key, kShards));
    used.insert(shard);
    ASSERT_TRUE(db.value()->Put(key, "v" + std::to_string(i)).ok());
  }
  EXPECT_EQ(used.size(), kShards) << "hash router left shards empty";

  // The record actually lives on the owning shard and nowhere else.
  for (int i = 0; i < 500; i += 37) {
    const std::string key = Key(i);
    const uint32_t owner = db.value()->ShardOf(key);
    for (uint32_t s = 0; s < kShards; ++s) {
      auto got = db.value()->shard(s).Get(key);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got.value().has_value(), s == owner) << key << " shard " << s;
    }
  }
}

TEST(ShardedDbTest, CrossShardScanIsOrderedAndComplete) {
  auto db = ShardedDb::Create(ShardOptions(), 4);
  ASSERT_TRUE(db.ok());
  std::map<std::string, std::string> shadow;
  Rng rng(0x5ca9);
  for (int i = 0; i < 600; ++i) {
    const std::string key = Key(int(rng.Uniform(400)));
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(db.value()->Put(key, value).ok());
    shadow[key] = value;
  }
  // Sprinkle deletes so tombstones cross the merge too.
  for (int i = 0; i < 400; i += 13) {
    ASSERT_TRUE(db.value()->Delete(Key(i)).ok());
    shadow.erase(Key(i));
  }
  ASSERT_TRUE(db.value()->Flush().ok());

  const auto check_range = [&](int lo, int hi) {
    auto got = db.value()->Scan(Key(lo), Key(hi));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto it = shadow.lower_bound(Key(lo));
    size_t n = 0;
    std::string prev;
    for (const auto& r : got.value()) {
      ASSERT_TRUE(prev.empty() || prev < r.key)
          << "merge broke global key order";
      prev = r.key;
      ASSERT_NE(it, shadow.end()) << "scan produced extra key " << r.key;
      EXPECT_EQ(r.key, it->first);
      EXPECT_EQ(r.value, it->second);
      ++it;
      ++n;
    }
    // The shadow iterator must also be exhausted within the range.
    EXPECT_TRUE(it == shadow.end() || it->first > Key(hi))
        << "scan dropped key " << it->first;
    (void)n;
  };
  check_range(0, 399);    // whole space
  check_range(37, 180);   // interior range
  check_range(390, 999);  // tail
}

TEST(ShardedDbTest, PersistsAcrossReopenViaSharedEnv) {
  auto env = std::make_shared<ShardEnv>();
  std::map<std::string, std::string> shadow;
  {
    auto db = ShardedDb::Open(ShardOptions(), 4, env);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "gen" + std::to_string(i)).ok());
      shadow[Key(i)] = "gen" + std::to_string(i);
    }
    ASSERT_TRUE(db.value()->Close().ok());
  }
  auto db = ShardedDb::Open(ShardOptions(), 4, env);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (const auto& [key, value] : shadow) {
    auto got = db.value()->GetVerified(key);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value().record.has_value()) << key;
    EXPECT_EQ(got.value().record->value, value);
  }
  auto scanned = db.value()->Scan(Key(0), Key(299));
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned.value().size(), shadow.size());
}

TEST(ShardedDbTest, WriteBatchRoutesAcrossShards) {
  auto db = ShardedDb::Create(ShardOptions(), 4);
  ASSERT_TRUE(db.ok());
  ElsmDb::WriteBatch batch;
  for (int i = 0; i < 200; ++i) batch.Put(Key(i), "batched");
  ASSERT_TRUE(db.value()->Write(batch).ok());
  for (int i = 0; i < 200; ++i) {
    auto got = db.value()->Get(Key(i));
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got.value().has_value()) << Key(i);
    EXPECT_EQ(*got.value(), "batched");
  }
  ElsmDb::WriteBatch deletes;
  for (int i = 0; i < 200; i += 2) deletes.Delete(Key(i));
  ASSERT_TRUE(db.value()->Write(deletes).ok());
  for (int i = 0; i < 200; ++i) {
    auto got = db.value()->Get(Key(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().has_value(), i % 2 == 1) << Key(i);
  }
}

// --- adversary cases --------------------------------------------------------

class ShardedAdversaryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_shared<ShardEnv>();
    auto db = ShardedDb::Open(ShardOptions(), kShards, env_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(db_->Put(Key(i), "genuine" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(db_->Flush().ok());
  }

  static constexpr uint32_t kShards = 4;
  std::shared_ptr<ShardEnv> env_;
  std::unique_ptr<ShardedDb> db_;
};

TEST_F(ShardedAdversaryTest, TamperedShardSstableDetectedNotMisreturned) {
  // Corrupt one SSTable of shard 1; reads routed there must fail closed,
  // while the untouched shards keep answering.
  const uint32_t victim_shard = 1;
  std::string victim;
  for (const auto& name : env_->shard_fs[victim_shard]->List("")) {
    if (name.ends_with(".sst")) {
      victim = name;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  ASSERT_TRUE(auth::Adversary::CorruptFile(*env_->shard_fs[victim_shard],
                                           victim, 100));

  int failures = 0;
  for (int i = 0; i < 400; ++i) {
    auto got = db_->GetVerified(Key(i));
    if (db_->ShardOf(Key(i)) == victim_shard) {
      if (!got.ok()) {
        EXPECT_TRUE(got.status().IsAuthFailure() ||
                    got.status().IsCorruption())
            << got.status().ToString();
        ++failures;
      } else if (got.value().record.has_value()) {
        // A hit that did come back must still be the genuine value.
        EXPECT_EQ(got.value().record->value, "genuine" + std::to_string(i));
      }
    } else {
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_TRUE(got.value().record.has_value());
      EXPECT_EQ(got.value().record->value, "genuine" + std::to_string(i));
    }
  }
  EXPECT_GT(failures, 0) << "tampering went unnoticed";

  // The cross-shard scan merges the victim shard — it must fail closed too.
  auto scanned = db_->Scan(Key(0), Key(399));
  ASSERT_FALSE(scanned.ok());
  EXPECT_TRUE(scanned.status().IsAuthFailure() ||
              scanned.status().IsCorruption())
      << scanned.status().ToString();
}

TEST_F(ShardedAdversaryTest, DroppedShardDirectoryDetectedOnReopen) {
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();
  // The host silently deletes everything shard 2 ever stored.
  for (const auto& name : env_->shard_fs[2]->List("")) {
    ASSERT_TRUE(env_->shard_fs[2]->Delete(name).ok());
  }
  auto reopened = ShardedDb::Open(ShardOptions(), kShards, env_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsAuthFailure())
      << reopened.status().ToString();
}

TEST_F(ShardedAdversaryTest, SwappedShardDirectoriesDetectedOnReopen) {
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();
  // The host re-homes shard 0's directory as shard 3 and vice versa. The
  // per-shard derived sealing keys make either manifest unreadable in its
  // new home.
  std::swap(env_->shard_fs[0], env_->shard_fs[3]);
  auto reopened = ShardedDb::Open(ShardOptions(), kShards, env_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsAuthFailure())
      << reopened.status().ToString();
}

TEST_F(ShardedAdversaryTest, ShardCountIsSealedAgainstRepartitioning) {
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();
  // Re-opening the 4-shard store as 2 shards would re-route half the keys
  // into silent misses; the sealed shard count refuses.
  env_->shard_fs.resize(2);
  env_->shard_platforms.resize(2);
  auto reopened = ShardedDb::Open(ShardOptions(), 2, env_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument)
      << reopened.status().ToString();
}

TEST_F(ShardedAdversaryTest, DeletedSuperManifestDetectedOnReopen) {
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();
  ASSERT_TRUE(env_->meta_fs->Delete(ShardOptions().name + "/SUPER").ok());
  auto reopened = ShardedDb::Open(ShardOptions(), kShards, env_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsRollbackDetected())
      << reopened.status().ToString();
}

// --- super-manifest edit-log adversary --------------------------------------
//
// The super-manifest is the same sealed log shape as the per-shard
// manifests: a SUPER snapshot plus a hash-chained SUPER-EDITS tail of
// delta records. Structural attacks on that log (truncate, reorder, stale
// replay, dropped snapshot) must fail closed exactly like their
// single-store counterparts in security_test.cc.
class SuperLogAdversaryTest : public ShardedAdversaryTest {
 protected:
  // Another write+flush round so the super tail gains one more sealed
  // delta record (per-shard digests change, so the refresh appends).
  void AdvanceEpoch(const std::string& value) {
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(db_->Put(Key(i), value).ok());
    }
    ASSERT_TRUE(db_->Flush().ok());
  }

  void CloseDb() {
    ASSERT_TRUE(db_->Close().ok());
    db_.reset();
  }

  std::string SuperTailName() {
    auto names = env_->meta_fs->List(ShardOptions().name + "/SUPER-EDITS-");
    EXPECT_EQ(names.size(), 1u) << "expected exactly one live super tail";
    return names.empty() ? std::string() : names[0];
  }

  // Self-contained frames (Fixed32 length + sealed record each).
  std::vector<std::string> SuperTailFrames() {
    auto raw = env_->meta_fs->ReadAll(SuperTailName());
    EXPECT_TRUE(raw.ok()) << raw.status().ToString();
    std::vector<std::string> frames;
    if (!raw.ok()) return frames;
    std::string_view cursor(raw.value());
    while (cursor.size() >= 4) {
      std::string_view peek = cursor;
      uint32_t len = 0;
      EXPECT_TRUE(GetFixed32(&peek, &len));
      if (peek.size() < len) break;
      frames.emplace_back(cursor.substr(0, 4 + len));
      cursor.remove_prefix(4 + len);
    }
    EXPECT_TRUE(cursor.empty()) << "torn super tail in a clean store";
    return frames;
  }

  void WriteSuperTail(const std::vector<std::string>& frames) {
    std::string raw;
    for (const std::string& frame : frames) raw += frame;
    ASSERT_TRUE(env_->meta_fs->Write(SuperTailName(), raw).ok());
  }
};

TEST_F(SuperLogAdversaryTest, TruncatedSuperTailDetectedAsRollback) {
  AdvanceEpoch("epoch2");
  CloseDb();
  auto frames = SuperTailFrames();
  ASSERT_GE(frames.size(), 2u);
  frames.pop_back();
  WriteSuperTail(frames);
  auto reopened = ShardedDb::Open(ShardOptions(), kShards, env_);
  ASSERT_FALSE(reopened.ok()) << "truncated super tail accepted";
  EXPECT_TRUE(reopened.status().IsRollbackDetected())
      << reopened.status().ToString();
}

TEST_F(SuperLogAdversaryTest, ReorderedSuperTailRecordsDetected) {
  AdvanceEpoch("epoch2");
  CloseDb();
  auto frames = SuperTailFrames();
  ASSERT_GE(frames.size(), 2u);
  std::swap(frames[0], frames[1]);
  WriteSuperTail(frames);
  auto reopened = ShardedDb::Open(ShardOptions(), kShards, env_);
  ASSERT_FALSE(reopened.ok()) << "reordered super tail accepted";
  EXPECT_TRUE(reopened.status().IsAuthFailure())
      << reopened.status().ToString();
}

TEST_F(SuperLogAdversaryTest, StaleSuperLogReplayDetected) {
  // Capture the super log (snapshot + tail), advance every layer, then
  // roll only the super log back to the authentic-but-stale capture. The
  // newest surviving record's sealed meta counter is behind the hardware.
  CloseDb();
  std::map<std::string, std::string> capture;
  for (const std::string& name :
       {std::string(ShardOptions().name + "/SUPER"), SuperTailName()}) {
    auto bytes = env_->meta_fs->ReadAll(name);
    ASSERT_TRUE(bytes.ok());
    capture[name] = std::move(bytes).value();
  }
  {
    auto db = ShardedDb::Open(ShardOptions(), kShards, env_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "fresher").ok());
    }
    ASSERT_TRUE(db.value()->Flush().ok());
    ASSERT_TRUE(db.value()->Close().ok());
  }
  for (const auto& [name, bytes] : capture) {
    ASSERT_TRUE(env_->meta_fs->Write(name, bytes).ok());
  }
  auto reopened = ShardedDb::Open(ShardOptions(), kShards, env_);
  ASSERT_FALSE(reopened.ok()) << "stale super log accepted";
  EXPECT_TRUE(reopened.status().IsRollbackDetected())
      << reopened.status().ToString();
}

TEST_F(SuperLogAdversaryTest, DroppedSuperSnapshotUnderTailFailsClosed) {
  CloseDb();
  ASSERT_TRUE(env_->meta_fs->Delete(ShardOptions().name + "/SUPER").ok());
  ASSERT_TRUE(env_->meta_fs->Exists(SuperTailName()));
  auto reopened = ShardedDb::Open(ShardOptions(), kShards, env_);
  ASSERT_FALSE(reopened.ok()) << "super tail without its snapshot accepted";
  EXPECT_TRUE(reopened.status().IsRollbackDetected() ||
              reopened.status().IsAuthFailure())
      << reopened.status().ToString();
}

TEST(ShardedRollbackTest, SingleShardRollbackInsideCounterWindowDetected) {
  // With a long counter-sync period a shard's monotonic counter never
  // bumps, so rolling that one shard back to an older-but-validly-sealed
  // snapshot passes the shard's own counter check. The super-manifest's
  // per-shard last_ts floor must still catch it.
  Options o = ShardOptions();
  o.counter_sync_period = 1000;  // no counter bumps within this test
  auto env = std::make_shared<ShardEnv>();
  constexpr uint32_t kShards = 4;
  {
    auto db = ShardedDb::Open(o, kShards, env);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "epoch1").ok());
    }
    ASSERT_TRUE(db.value()->Close().ok());
  }
  // Snapshot shard 1's whole (authentic) epoch-1 disk.
  std::map<std::string, std::string> snapshot;
  for (const auto& name : env->shard_fs[1]->List("")) {
    snapshot[name] = *env->shard_fs[1]->Blob(name);
  }
  {
    auto db = ShardedDb::Open(o, kShards, env);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "epoch2").ok());
    }
    ASSERT_TRUE(db.value()->Close().ok());
  }
  // Adversary restores only shard 1 to the epoch-1 state.
  for (const auto& name : env->shard_fs[1]->List("")) {
    if (!snapshot.count(name)) {
      ASSERT_TRUE(env->shard_fs[1]->Delete(name).ok());
    }
  }
  for (const auto& [name, bytes] : snapshot) {
    ASSERT_TRUE(env->shard_fs[1]->Write(name, bytes).ok());
  }
  auto reopened = ShardedDb::Open(o, kShards, env);
  ASSERT_FALSE(reopened.ok()) << "single-shard rollback went unnoticed";
  EXPECT_TRUE(reopened.status().IsAuthFailure())
      << reopened.status().ToString();
}

TEST(ShardedRollbackTest, CrossShardManifestReplayDetected) {
  // The host copies shard 3's (validly sealed) manifest bytes over shard
  // 0's manifest. The derived per-shard sealing keys make it unreadable in
  // its new home.
  auto env = std::make_shared<ShardEnv>();
  constexpr uint32_t kShards = 4;
  {
    auto db = ShardedDb::Open(ShardOptions(), kShards, env);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "v").ok());
    }
    ASSERT_TRUE(db.value()->Close().ok());
  }
  const std::string base = ShardOptions().name;
  auto donor = env->shard_fs[3]->Blob(
      ShardedDb::ShardName(base, 3) + "/MANIFEST");
  ASSERT_NE(donor, nullptr);
  ASSERT_TRUE(env->shard_fs[0]
                  ->Write(ShardedDb::ShardName(base, 0) + "/MANIFEST", *donor)
                  .ok());
  auto reopened = ShardedDb::Open(ShardOptions(), kShards, env);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsAuthFailure())
      << reopened.status().ToString();
}

TEST(ShardedCrashTest, SingleShardCrashRecoversWithoutAuthFailure) {
  // A benign crash on ONE shard's disk must not read as an attack on the
  // sharded store: reopen recovers the torn shard from its WAL and the
  // other shards untouched.
  auto env = std::make_shared<ShardEnv>();
  env->shard_fs.resize(3);
  auto enclave = std::make_shared<sgx::Enclave>(sgx::CostModel{}, true);
  auto fault = std::make_shared<storage::FaultFs>(enclave);
  env->shard_fs[1] = fault;

  std::map<std::string, std::string> shadow;
  std::string in_flight_key;
  {
    auto db = ShardedDb::Open(ShardOptions(), 3, env);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(db.value()->Put(Key(i), "stable").ok());
      shadow[Key(i)] = "stable";
    }
    ASSERT_TRUE(db.value()->Flush().ok());
    fault->ScheduleCrash(3, /*keep_fraction=*/0.4);
    for (int i = 200; i < 400; ++i) {
      Status s = db.value()->Put(Key(i), "racing");
      if (!s.ok()) {
        EXPECT_TRUE(fault->crashed());
        in_flight_key = Key(i);
        break;
      }
      shadow[Key(i)] = "racing";
    }
    ASSERT_TRUE(fault->crashed()) << "crash never fired";
    // Power loss: no Close(). The destructor's persist fails on shard 1.
  }

  fault->ClearCrash();
  auto db = ShardedDb::Open(ShardOptions(), 3, env);
  ASSERT_TRUE(db.ok()) << "benign shard crash read as attack: "
                       << db.status().ToString();
  for (const auto& [key, value] : shadow) {
    if (key == in_flight_key) continue;
    auto got = db.value()->GetVerified(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    ASSERT_TRUE(got.value().record.has_value()) << key;
    EXPECT_EQ(got.value().record->value, value) << key;
  }
}

}  // namespace
}  // namespace elsm
