// Storage-layer tests: SimFs semantics + cost charging, WAL framing and
// crash truncation, read-buffer placement/eviction behaviour, mmap pinning.
#include <gtest/gtest.h>

#include "storage/mmap.h"
#include "storage/read_buffer.h"
#include "storage/simfs.h"
#include "storage/wal.h"

namespace elsm::storage {
namespace {

std::shared_ptr<sgx::Enclave> MakeEnclave(bool enabled = true,
                                          uint64_t epc_bytes = 2 << 20) {
  sgx::CostModel m;
  m.epc_bytes = epc_bytes;
  return std::make_shared<sgx::Enclave>(m, enabled);
}

TEST(SimFsTest, WriteReadRoundTrip) {
  SimFs fs(MakeEnclave());
  ASSERT_TRUE(fs.Write("a/file", "hello world").ok());
  auto all = fs.ReadAll("a/file");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value(), "hello world");
  auto part = fs.Read("a/file", 6, 5);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part.value(), "world");
}

TEST(SimFsTest, ReadPastEofClampsOrFails) {
  SimFs fs(MakeEnclave());
  ASSERT_TRUE(fs.Write("f", "12345").ok());
  auto tail = fs.Read("f", 3, 100);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail.value(), "45");
  EXPECT_FALSE(fs.Read("f", 6, 1).ok());
  EXPECT_FALSE(fs.Read("missing", 0, 1).ok());
}

TEST(SimFsTest, DeleteRenameListExists) {
  SimFs fs(MakeEnclave());
  ASSERT_TRUE(fs.Write("db/000001.sst", "x").ok());
  ASSERT_TRUE(fs.Write("db/000002.sst", "y").ok());
  ASSERT_TRUE(fs.Write("other/file", "z").ok());
  EXPECT_EQ(fs.List("db/").size(), 2u);
  ASSERT_TRUE(fs.Rename("db/000001.sst", "db/000003.sst").ok());
  EXPECT_FALSE(fs.Exists("db/000001.sst"));
  EXPECT_TRUE(fs.Exists("db/000003.sst"));
  ASSERT_TRUE(fs.Delete("db/000002.sst").ok());
  EXPECT_FALSE(fs.Delete("db/000002.sst").ok());
  EXPECT_EQ(fs.List("db/").size(), 1u);
}

TEST(SimFsTest, ChargesFileCosts) {
  auto enclave = MakeEnclave();
  SimFs fs(enclave);
  const uint64_t t0 = enclave->now_ns();
  ASSERT_TRUE(fs.Write("f", std::string(1000, 'x')).ok());
  const uint64_t after_write = enclave->now_ns();
  EXPECT_GT(after_write, t0);
  ASSERT_TRUE(fs.Read("f", 0, 1000).ok());
  EXPECT_GT(enclave->now_ns(), after_write);
}

TEST(SimFsTest, BlobSurvivesDelete) {
  SimFs fs(MakeEnclave());
  ASSERT_TRUE(fs.Write("f", "pinned-content").ok());
  auto blob = fs.Blob("f");
  ASSERT_TRUE(fs.Delete("f").ok());
  ASSERT_NE(blob, nullptr);
  EXPECT_EQ(*blob, "pinned-content");  // mmap-after-unlink semantics
}

TEST(WalTest, AppendAndReadAll) {
  SimFs fs(MakeEnclave());
  WalWriter wal(&fs, "wal");
  ASSERT_TRUE(wal.Append("one").ok());
  ASSERT_TRUE(wal.Append("two").ok());
  ASSERT_TRUE(wal.Append(std::string(5000, 'z')).ok());
  auto contents = ReadWal(fs, "wal");
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents.value().clean);
  ASSERT_EQ(contents.value().records.size(), 3u);
  EXPECT_EQ(contents.value().records[0], "one");
  EXPECT_EQ(contents.value().records[2].size(), 5000u);
}

TEST(SimFsTest, SyncContract) {
  // SimFs is always durable, so the barriers are free — but Sync of a
  // missing file is still the caller's bug, matching fsync(2) and the
  // posix backend.
  auto enclave = MakeEnclave();
  SimFs fs(enclave);
  const uint64_t before = enclave->now_ns();
  ASSERT_TRUE(fs.Write("f", "data").ok());
  const uint64_t after_write = enclave->now_ns();
  EXPECT_TRUE(fs.Sync("f").ok());
  EXPECT_TRUE(fs.SyncDir().ok());
  EXPECT_EQ(enclave->now_ns(), after_write) << "Sync must charge nothing";
  EXPECT_GT(after_write, before);
  EXPECT_FALSE(fs.Sync("missing").ok());
}

TEST(WalTest, MissingWalIsEmpty) {
  SimFs fs(MakeEnclave());
  auto contents = ReadWal(fs, "nope");
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents.value().records.empty());
}

TEST(WalTest, TornTailStopsCleanly) {
  SimFs fs(MakeEnclave());
  WalWriter wal(&fs, "wal");
  ASSERT_TRUE(wal.Append("complete-record").ok());
  ASSERT_TRUE(wal.Append("to-be-torn").ok());
  auto blob = fs.MutableBlob("wal");
  blob->resize(blob->size() - 4);  // tear the last frame
  auto contents = ReadWal(fs, "wal");
  ASSERT_TRUE(contents.ok());
  EXPECT_FALSE(contents.value().clean);
  ASSERT_EQ(contents.value().records.size(), 1u);
  EXPECT_EQ(contents.value().records[0], "complete-record");
}

TEST(WalTest, CorruptChecksumStopsReplay) {
  SimFs fs(MakeEnclave());
  WalWriter wal(&fs, "wal");
  ASSERT_TRUE(wal.Append("first").ok());
  ASSERT_TRUE(wal.Append("second").ok());
  auto blob = fs.MutableBlob("wal");
  (*blob)[10] ^= 0x01;  // payload byte of frame 0
  auto contents = ReadWal(fs, "wal");
  ASSERT_TRUE(contents.ok());
  EXPECT_FALSE(contents.value().clean);
  EXPECT_TRUE(contents.value().records.empty());
}

TEST(ReadBufferTest, HitAvoidsLoader) {
  auto enclave = MakeEnclave();
  ReadBuffer buffer(enclave, 64 << 10, BufferPlacement::kOutsideEnclave);
  int loads = 0;
  auto loader = [&]() -> Result<std::string> {
    ++loads;
    return std::string(4096, 'b');
  };
  ASSERT_TRUE(buffer.Get("f", 0, crypto::kZeroHash, loader).ok());
  ASSERT_TRUE(buffer.Get("f", 0, crypto::kZeroHash, loader).ok());
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(buffer.stats().hits, 1u);
  EXPECT_EQ(buffer.stats().misses, 1u);
}

TEST(ReadBufferTest, EvictsWhenFull) {
  auto enclave = MakeEnclave();
  ReadBuffer buffer(enclave, 8 << 10, BufferPlacement::kOutsideEnclave);
  auto loader = []() -> Result<std::string> {
    return std::string(4096, 'b');
  };
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(buffer.Get("f", i * 4096, crypto::kZeroHash, loader).ok());
  }
  EXPECT_GT(buffer.stats().evictions, 0u);
  EXPECT_LE(buffer.bytes_used(), 8u << 10);
}

TEST(ReadBufferTest, InvalidateDropsFileBlocks) {
  auto enclave = MakeEnclave();
  ReadBuffer buffer(enclave, 64 << 10, BufferPlacement::kOutsideEnclave);
  auto loader = []() -> Result<std::string> { return std::string(100, 'x'); };
  ASSERT_TRUE(buffer.Get("keep", 0, crypto::kZeroHash, loader).ok());
  ASSERT_TRUE(buffer.Get("drop", 0, crypto::kZeroHash, loader).ok());
  buffer.Invalidate("drop");
  int loads = 0;
  auto counting = [&]() -> Result<std::string> {
    ++loads;
    return std::string(100, 'x');
  };
  ASSERT_TRUE(buffer.Get("keep", 0, crypto::kZeroHash, counting).ok());
  ASSERT_TRUE(buffer.Get("drop", 0, crypto::kZeroHash, counting).ok());
  EXPECT_EQ(loads, 1);  // only "drop" reloaded
}

TEST(ReadBufferTest, InsideEnclavePlacementChargesMore) {
  // The Fig. 2 effect in miniature: identical access streams, buffer inside
  // vs outside the enclave; the inside buffer must cost more once it
  // outgrows the EPC.
  const uint64_t kEpc = 16 * 4096;
  auto run = [&](BufferPlacement placement) {
    auto enclave = MakeEnclave(true, kEpc);
    ReadBuffer buffer(enclave, 64 * 4096, placement);
    auto loader = []() -> Result<std::string> {
      return std::string(4096, 'd');
    };
    // Two passes over 64 blocks: pass 2 hits the buffer but thrashes EPC.
    for (int pass = 0; pass < 2; ++pass) {
      for (uint64_t i = 0; i < 64; ++i) {
        EXPECT_TRUE(buffer.Get("f", i * 4096, crypto::kZeroHash, loader).ok());
      }
    }
    return enclave->now_ns();
  };
  const uint64_t outside = run(BufferPlacement::kOutsideEnclave);
  const uint64_t inside = run(BufferPlacement::kInsideEnclave);
  EXPECT_GT(inside, 2 * outside);
}

TEST(ReadBufferTest, LoaderFailurePropagates) {
  auto enclave = MakeEnclave();
  ReadBuffer buffer(enclave, 4096, BufferPlacement::kOutsideEnclave);
  auto loader = []() -> Result<std::string> {
    return Status::IOError("disk gone");
  };
  EXPECT_FALSE(buffer.Get("f", 0, crypto::kZeroHash, loader).ok());
}

TEST(MmapTest, ReadsAndPins) {
  auto enclave = MakeEnclave();
  SimFs fs(enclave);
  ASSERT_TRUE(fs.Write("f", "0123456789").ok());
  auto region = MmapRegion::Open(fs, "f");
  ASSERT_TRUE(region.ok());
  auto view = region.value().Read(2, 4);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value(), "2345");
  ASSERT_TRUE(fs.Delete("f").ok());
  auto still = region.value().Read(0, 10);
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still.value(), "0123456789");
}

TEST(MmapTest, OpenMissingFileFails) {
  auto enclave = MakeEnclave();
  SimFs fs(enclave);
  EXPECT_FALSE(MmapRegion::Open(fs, "missing").ok());
}

TEST(MmapTest, NoPerReadWorldSwitch) {
  auto enclave = MakeEnclave();
  SimFs fs(enclave);
  ASSERT_TRUE(fs.Write("f", std::string(1 << 16, 'm')).ok());
  auto region = MmapRegion::Open(fs, "f");
  ASSERT_TRUE(region.ok());
  const uint64_t ocalls = enclave->counters().ocalls;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(region.value().Read(uint64_t(i) * 100, 100).ok());
  }
  EXPECT_EQ(enclave->counters().ocalls, ocalls);  // mmap reads are exitless
}

}  // namespace
}  // namespace elsm::storage
