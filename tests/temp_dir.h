// RAII scratch directory for the posix-backend test suites: mkdtemp under
// the system temp root, recursively removed on destruction — so every
// ctest shard is temp-dir scoped and cleaned on exit even when assertions
// fire mid-test.
#pragma once

#include <stdlib.h>

#include <filesystem>
#include <string>
#include <system_error>

namespace elsm::test_util {

class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "elsm-test-XXXXXX").string();
    const char* made = mkdtemp(tmpl.data());
    path_ = made == nullptr ? "" : made;
  }
  ~TempDir() {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  bool ok() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace elsm::test_util
