// YCSB generator and runner tests: distribution skew properties, workload
// mix ratios, key formatting, and an end-to-end run against ElsmDb.
#include <gtest/gtest.h>

#include <map>

#include "elsm/elsm_db.h"
#include "ycsb/kv_interface.h"
#include "ycsb/runner.h"
#include "ycsb/workload.h"

namespace elsm::ycsb {
namespace {

TEST(DistributionTest, UniformCoversKeyspaceEvenly) {
  Rng rng(1);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.Uniform(10)];
  for (int c : counts) {
    EXPECT_GT(c, 8500);
    EXPECT_LT(c, 11500);
  }
}

TEST(DistributionTest, ZipfianIsSkewed) {
  Rng rng(2);
  ZipfianGenerator zipf(10000);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next(rng)];
  // Rank 0 should dominate: YCSB zipfian(0.99) gives it ~10% of the mass.
  EXPECT_GT(counts[0], 5000);
  // And the tail is long: far more distinct keys than a uniform head.
  EXPECT_GT(counts.size(), 1000u);
}

TEST(DistributionTest, ScrambledZipfianSpreadsHotKeys) {
  Rng rng(3);
  ScrambledZipfianGenerator zipf(10000);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Next(rng)];
  // The hottest key should NOT be key 0 (it is hashed somewhere else) but
  // skew must persist.
  int max_count = 0;
  uint64_t max_key = 0;
  for (auto& [k, c] : counts) {
    if (c > max_count) {
      max_count = c;
      max_key = k;
    }
  }
  EXPECT_NE(max_key, 0u);
  EXPECT_GT(max_count, 2000);
}

TEST(DistributionTest, LatestFavorsRecentKeys) {
  Rng rng(4);
  LatestGenerator latest(10000);
  int recent = 0;
  for (int i = 0; i < 10000; ++i) {
    if (latest.Next(rng) >= 9000) ++recent;
  }
  EXPECT_GT(recent, 6000);  // >60% of draws from the newest 10%
}

TEST(DistributionTest, LatestTracksInserts) {
  Rng rng(5);
  LatestGenerator latest(100);
  latest.AdvanceTo(200);
  bool saw_new = false;
  for (int i = 0; i < 1000; ++i) {
    if (latest.Next(rng) >= 100) saw_new = true;
  }
  EXPECT_TRUE(saw_new);
}

TEST(WorkloadTest, KeyFormatting) {
  EXPECT_EQ(MakeKey(0, 16).size(), 16u);
  EXPECT_EQ(MakeKey(123456, 16), "u000000000123456");
  EXPECT_EQ(MakeKey(1, 20).size(), 20u);
  EXPECT_EQ(MakeValue(7, 100).size(), 100u);
  EXPECT_EQ(MakeValue(7, 100), MakeValue(7, 100));
  EXPECT_NE(MakeValue(7, 100), MakeValue(8, 100));
}

TEST(WorkloadTest, KeysSortLikeIndices) {
  for (uint64_t i = 0; i + 1 < 2000; i += 97) {
    EXPECT_LT(MakeKey(i, 16), MakeKey(i + 1, 16));
  }
}

TEST(WorkloadTest, CoreWorkloadProportions) {
  const WorkloadSpec a = WorkloadSpec::A();
  EXPECT_DOUBLE_EQ(a.read_proportion + a.update_proportion, 1.0);
  const WorkloadSpec d = WorkloadSpec::D();
  EXPECT_EQ(d.distribution, KeyDistribution::kLatest);
  const WorkloadSpec e = WorkloadSpec::E();
  EXPECT_GT(e.scan_proportion, 0.9);
}

TEST(WorkloadTest, MixMatchesRequestedRatio) {
  WorkloadSpec spec = WorkloadSpec::ReadWriteMix(70);
  spec.record_count = 100;
  KeyChooser chooser(spec, 9);
  int reads = 0;
  const int kOps = 20000;
  for (int i = 0; i < kOps; ++i) {
    if (chooser.NextOp() == OpType::kRead) ++reads;
  }
  EXPECT_NEAR(double(reads) / kOps, 0.70, 0.02);
}

TEST(RunnerTest, LoadThenRunAgainstElsm) {
  Options options;
  options.mode = Mode::kP2;
  options.memtable_bytes = 8 << 10;
  options.level1_bytes = 32 << 10;
  auto db = ElsmDb::Create(options);
  ASSERT_TRUE(db.ok());
  ElsmKv kv(db.value().get());

  WorkloadSpec spec = WorkloadSpec::A();
  spec.record_count = 500;
  spec.operation_count = 1000;
  YcsbRunner runner(spec);
  ASSERT_TRUE(runner.Load(kv).ok());
  auto stats = runner.Run(kv);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().ops, 1000u);
  EXPECT_EQ(stats.value().failures, 0u);
  EXPECT_EQ(stats.value().not_found, 0u);  // reads target loaded keys
  EXPECT_GT(stats.value().MeanLatencyUs(), 0.0);
  EXPECT_GT(stats.value().reads.count(), 0u);
  EXPECT_GT(stats.value().writes.count(), 0u);
}

TEST(RunnerTest, WorkloadEScansSucceed) {
  Options options;
  options.mode = Mode::kP2;
  options.memtable_bytes = 8 << 10;
  auto db = ElsmDb::Create(options);
  ASSERT_TRUE(db.ok());
  ElsmKv kv(db.value().get());

  WorkloadSpec spec = WorkloadSpec::E();
  spec.record_count = 300;
  spec.operation_count = 100;
  spec.max_scan_len = 20;
  YcsbRunner runner(spec);
  ASSERT_TRUE(runner.Load(kv).ok());
  auto stats = runner.Run(kv);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats.value().scans.count(), 0u);
}

TEST(RunnerTest, HistogramPercentilesOrdered) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Add(v);
  EXPECT_LE(h.Percentile(50), h.Percentile(95));
  EXPECT_LE(h.Percentile(95), h.Percentile(99));
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_NEAR(h.Mean(), 5000.5, 1.0);
}

}  // namespace
}  // namespace elsm::ycsb
